// Allocation audit of the steady-state gossip hot path: after warmup, one
// full gossip activation per node (peer-sampling exchange + T-Man exchange
// + Algorithm 4 selection) must perform ZERO heap allocations — all working
// sets live in member scratch buffers sized during warmup.
//
// The audit replaces the global operator new/delete with counting versions
// (this TU only links into this test binary), runs the system past its
// buffer-growth phase, and then asserts the allocation counter stays flat
// across gossip_step() calls.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/vitis_system.hpp"
#include "support/histogram.hpp"
#include "support/recorder.hpp"
#include "workload/scenario.hpp"

namespace {

std::uint64_t g_allocations = 0;  // single-threaded test: plain counter

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace vitis::core {
namespace {

TEST(AllocationAudit, SteadyStateGossipStepIsAllocationFree) {
  workload::SyntheticScenarioParams params;
  params.subscriptions.nodes = 400;
  params.subscriptions.topics = 200;
  params.subscriptions.subs_per_node = 20;
  params.subscriptions.pattern = workload::CorrelationPattern::kLowCorrelation;
  params.events = 8;
  // Skewed rates put ranking on the memoized scoring path (with uniform
  // rates the memo is bypassed), so the audit covers probe + insert too.
  params.rate_alpha = 1.0;
  params.seed = 1234;
  const auto scenario = workload::make_synthetic_scenario(params);
  auto system = workload::make_vitis(scenario, VitisConfig{}, 1234);

  // Warmup: grows every scratch buffer (T-Man seen-arrays, exchange
  // buffers, selection working sets, partial views) to steady-state size.
  system->run_cycles(12);

  // Audit window: one full activation for every node. Any push_back past
  // reserved capacity, any temporary vector, any node-local map would trip
  // the counter.
  const std::uint64_t hits_before = system->utility_cache().stats().hits;
  const std::uint64_t before = g_allocations;
  for (ids::NodeIndex node = 0; node < system->node_count(); ++node) {
    system->gossip_step(node);
  }
  const std::uint64_t during = g_allocations - before;
  EXPECT_EQ(during, 0u)
      << during << " heap allocations in " << system->node_count()
      << " steady-state gossip activations";

  // The window above exercised the memoized scoring path for real: in
  // steady state re-ranking the same interned pairs must hit the cache,
  // and the zero-allocation assertion covers those hits.
  if (utility_cache_env_enabled()) {
    ASSERT_TRUE(system->utility_cache().enabled());
    EXPECT_GT(system->utility_cache().stats().hits, hits_before)
        << "steady-state gossip window never hit the utility cache";
  }

  // The audit must be real: the same window at construction time allocates.
  const std::uint64_t fresh_before = g_allocations;
  auto second = workload::make_vitis(scenario, VitisConfig{}, 1234);
  EXPECT_GT(g_allocations, fresh_before)
      << "counting operator new is not wired in";
}

TEST(AllocationAudit, ArenaSteadyStateMaintenanceCycleIsAllocationFree) {
  // The arena conversion must not reintroduce per-cycle churn: once every
  // scratch buffer (activation order, touched adjacency lists, exchange
  // buffers, slab-backed routing tables) reached steady-state size, a FULL
  // maintenance cycle — gossip, T-Man, ranking, election, relay repair,
  // heartbeats, adjacency rebuild — is amortized allocation-free. Strict
  // zero is not the invariant here (T-Man keeps reshaping the overlay, so a
  // node newly recruited onto a relay path or gaining its first adjacency
  // edges legitimately grows a vector's capacity once); the invariant is
  // that allocations are RARE capacity-growth events, orders of magnitude
  // below the activation count — any per-activation temporary (the failure
  // mode an arena regression would introduce) trips the budget immediately.
  workload::SyntheticScenarioParams params;
  params.subscriptions.nodes = 400;
  params.subscriptions.topics = 200;
  params.subscriptions.subs_per_node = 20;
  params.subscriptions.pattern = workload::CorrelationPattern::kLowCorrelation;
  params.events = 8;
  params.seed = 4321;
  const auto scenario = workload::make_synthetic_scenario(params);
  auto system = workload::make_vitis(scenario, VitisConfig{}, 4321);

  // Warmup long enough to cover every periodic protocol (election period,
  // relay refresh) at least twice, so all amortized growth has happened.
  system->run_cycles(48);

  const std::uint64_t before = g_allocations;
  constexpr std::size_t kCycles = 4;
  system->run_cycles(kCycles);
  const std::uint64_t during = g_allocations - before;
  // 400 nodes × 4 cycles ≈ 1600 activations; residual capacity growth
  // measures ~13 allocations here. One temporary per activation would be
  // ≥ 1600 — budget an order of magnitude below that, an order above the
  // residue (allocator growth policies differ across stdlibs).
  const std::uint64_t budget = system->node_count() * kCycles / 10;
  EXPECT_LT(during, budget)
      << during << " heap allocations in " << kCycles
      << " steady-state maintenance cycles (budget " << budget << ")";

  // The deterministic footprint gauge is itself allocation-free (the
  // capacity bench calls it per sweep point).
  const std::uint64_t gauge_before = g_allocations;
  const std::size_t footprint = system->memory_footprint();
  EXPECT_EQ(g_allocations - gauge_before, 0u);
  EXPECT_GT(footprint, 0u);
}

TEST(AllocationAudit, FaultAdmissionGossipStepIsAllocationFree) {
  // The fault layer sits on the per-message hot path (every shuffle and
  // T-Man exchange consults deliver()); with an active plan — drop,
  // delay, and an open partition window all firing — the steady-state
  // gossip activation must stay allocation-free.
  workload::SyntheticScenarioParams params;
  params.subscriptions.nodes = 400;
  params.subscriptions.topics = 200;
  params.subscriptions.subs_per_node = 20;
  params.subscriptions.pattern = workload::CorrelationPattern::kLowCorrelation;
  params.events = 8;
  params.seed = 1234;
  const auto scenario = workload::make_synthetic_scenario(params);
  VitisConfig config;
  config.relay_retransmit = 2;      // retransmit loop on the relay path
  config.route_fallback_limit = 2;  // successor detour on dropped hops
  config.gateway_silence_limit = 3;
  auto system = workload::make_vitis(scenario, config, 1234);
  system->run_cycles(12);

  sim::FaultConfig fault;
  fault.drop = 0.2;
  fault.delay = 0.1;
  // Window open for the whole audit: the partition hash path runs on
  // every admission check.
  fault.partitions.push_back(sim::PartitionWindow{0, 1'000'000, 0x99ULL});
  system->set_fault_plan(fault);
  system->run_cycles(4);  // settle any plan-dependent scratch growth

  const std::uint64_t before = g_allocations;
  for (ids::NodeIndex node = 0; node < system->node_count(); ++node) {
    system->gossip_step(node);
  }
  const std::uint64_t during = g_allocations - before;
  EXPECT_EQ(during, 0u)
      << during << " heap allocations in " << system->node_count()
      << " fault-admitted gossip activations";
  EXPECT_GT(system->fault_plan().stats().attempts, 0u);
}

TEST(AllocationAudit, FaultPlanPrimitivesAreAllocationFree) {
  // deliver()/hop_penalty()/for_due_crashes() are called per message; none
  // may touch the heap after configure().
  sim::CycleEngine engine(16, 9);
  sim::FaultConfig config;
  config.drop = 0.3;
  config.delay = 0.2;
  config.partitions.push_back(sim::PartitionWindow{0, 100, 0x7ULL});
  for (std::uint32_t i = 0; i < 8; ++i) {
    config.crashes.push_back(sim::CrashEvent{i, static_cast<ids::NodeIndex>(i)});
  }
  sim::FaultPlan plan;
  plan.configure(config, 4242, &engine);

  const std::uint64_t before = g_allocations;
  std::uint64_t admitted = 0;
  std::uint32_t penalty = 0;
  std::size_t crashed = 0;
  for (int i = 0; i < 10'000; ++i) {
    const auto a = static_cast<ids::NodeIndex>(i % 16);
    const auto b = static_cast<ids::NodeIndex>((i + 7) % 16);
    admitted += plan.deliver(a, b, sim::MessageKind::kPublication) ? 1 : 0;
    penalty += plan.hop_penalty(a, b);
  }
  plan.for_due_crashes(100, [&](ids::NodeIndex) { ++crashed; });
  const std::uint64_t during = g_allocations - before;
  EXPECT_EQ(during, 0u)
      << during << " heap allocations in 10k fault-plan primitive calls";
  EXPECT_GT(admitted, 0u);
  EXPECT_GT(penalty, 0u);
  EXPECT_EQ(crashed, 8u);
}

TEST(AllocationAudit, HistogramRecordPathIsAllocationFree) {
  // Distribution channels sit on per-cycle hot paths (heartbeat refresh,
  // stage passes, delivery accounting): once configure_workers() has sized
  // the lanes, record() must be a handful of scalar ops — and the merged
  // views are std::array-backed, so even read-out stays off the heap.
  support::HistogramSet set;
  set.configure_workers(4);  // lane sizing happens here, before the run

  const std::uint64_t before = g_allocations;
  std::uint64_t value = 1;
  for (int i = 0; i < 10'000; ++i) {
    const auto worker = static_cast<std::size_t>(i % 4);
    set.record(support::Channel::kDeliveryHops, value % 64, worker);
    set.record(support::Channel::kRoutingTableSize, value % 24, worker);
    set.record(support::Channel::kStageActivations, value);
    value = value * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  const support::Histogram merged =
      set.merged(support::Channel::kDeliveryHops);
  const std::uint64_t p99 = merged.quantile(0.99);
  set.reset_channel(support::Channel::kDeliveryHops);
  const std::uint64_t during = g_allocations - before;
  EXPECT_EQ(during, 0u)
      << during << " heap allocations in 30k histogram records";
  EXPECT_EQ(merged.count(), 10'000u);
  EXPECT_LE(p99, 63u);
}

TEST(AllocationAudit, ObserveSampleIsAllocationFree) {
  workload::SyntheticScenarioParams params;
  params.subscriptions.nodes = 400;
  params.subscriptions.topics = 200;
  params.subscriptions.subs_per_node = 20;
  params.subscriptions.pattern = workload::CorrelationPattern::kLowCorrelation;
  params.events = 8;
  params.seed = 1234;
  const auto scenario = workload::make_synthetic_scenario(params);
  auto system = workload::make_vitis(scenario, VitisConfig{}, 1234);

  // configure_recorder pre-sizes every recorder buffer and the health
  // analyzer's scratch (BFS stamps, frontier, ring order); the warmup
  // cycles sample through the cycle-engine observer and grow anything left.
  support::RecorderConfig config;
  config.enabled = true;
  config.stride = 1;
  config.invariants = true;
  config.expected_cycles = 64;
  system->configure_recorder(config);
  system->run_cycles(12);

  // Audit window: sampling the full gauge set (cluster BFS over every
  // topic, ring-consistency sort, view ages, window counters) plus the
  // invariant monitors must not touch the heap.
  const std::uint64_t before = g_allocations;
  for (int i = 0; i < 8; ++i) system->observe_sample();
  const std::uint64_t during = g_allocations - before;
  EXPECT_EQ(during, 0u)
      << during << " heap allocations in 8 recorder samples";
}

}  // namespace
}  // namespace vitis::core
