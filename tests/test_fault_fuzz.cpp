// Randomized fault-scenario fuzzer: 50 seed-enumerated (scenario, fault
// plan, workload) combinations, each asserting the analysis/health
// invariants through a fault phase and after healing. Every assertion is
// wrapped in a SCOPED_TRACE carrying a one-line repro — paste the printed
// `seed=...` line into a unit test to replay a failing scenario exactly.
//
// The corpus shifts with the FAULT_FUZZ_SEED_OFFSET environment variable
// (CI runs extra offsets under the sanitizers); the default offset 0 keeps
// the checked-in run deterministic.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/health.hpp"
#include "workload/scenario.hpp"

namespace vitis {
namespace {

constexpr std::uint64_t kBaseSeed = 5000;
constexpr std::size_t kScenarios = 50;
constexpr std::size_t kWarmupCycles = 20;
constexpr std::size_t kFaultCycles = 24;
constexpr std::size_t kRecoveryCycles = 18;

std::uint64_t seed_offset() {
  const char* env = std::getenv("FAULT_FUZZ_SEED_OFFSET");
  return env == nullptr ? 0 : std::strtoull(env, nullptr, 10);
}

struct FuzzCase {
  std::uint64_t seed;
  workload::SyntheticScenario scenario;
  sim::FaultConfig fault;
  std::string repro;  // one-line reproduction recipe
};

FuzzCase draw_case(std::uint64_t seed) {
  sim::Rng rng(seed);

  workload::SyntheticScenarioParams params;
  params.subscriptions.nodes = 96 + rng.index(65);   // 96..160
  params.subscriptions.topics = 32 + rng.index(33);  // 32..64
  params.subscriptions.subs_per_node = 8;
  params.subscriptions.pattern = workload::CorrelationPattern::kRandom;
  params.events = 50;
  params.seed = seed;
  auto scenario = workload::make_synthetic_scenario(params);

  workload::FaultScenarioParams fp;
  fp.nodes = params.subscriptions.nodes;
  fp.fault_start = kWarmupCycles;
  fp.fault_end = kWarmupCycles + kFaultCycles;
  auto fault = workload::make_fault_config(fp, rng);

  char line[160];
  std::snprintf(line, sizeof line,
                "seed=%llu nodes=%zu topics=%zu drop=%.4f delay=%.4f "
                "partitions=%zu crashes=%zu",
                static_cast<unsigned long long>(seed),
                params.subscriptions.nodes, params.subscriptions.topics,
                fault.drop, fault.delay, fault.partitions.size(),
                fault.crashes.size());
  return FuzzCase{seed, std::move(scenario), std::move(fault),
                  std::string(line)};
}

/// Publish the schedule, skipping events whose publisher is offline.
template <typename System>
void publish_alive(System& system,
                   const std::vector<pubsub::Publication>& schedule) {
  for (const auto& [topic, publisher] : schedule) {
    if (!system.is_alive(publisher)) continue;
    (void)system.publish(topic, publisher);
  }
}

void check_vitis_invariants(const core::VitisSystem& system,
                            analysis::HealthAnalyzer& health) {
  const std::size_t n = system.node_count();
  const std::size_t topics = system.subscriptions().topic_count();
  for (std::size_t i = 0; i < n; ++i) {
    const auto node = static_cast<ids::NodeIndex>(i);
    if (!system.is_alive(node)) continue;
    EXPECT_TRUE(analysis::table_within_bounds(node,
                                              system.routing_table(node)));
    EXPECT_TRUE(analysis::successor_is_clockwise_closest(
        system.ring_id(node), system.routing_table(node).entries()));
    const auto& profile = system.profile(node);
    for (std::size_t t = 0; t < profile.subscriptions().size(); ++t) {
      EXPECT_TRUE(analysis::gateway_depth_bounded(
          profile.proposal_at(t).hops, system.config().gateway_depth));
    }
    // Relay-table bounds: every link names a valid, non-self peer and the
    // table never holds more links than (topics x table capacity) allows.
    const core::RelayTable& relays = system.relay_table(node);
    EXPECT_LE(relays.topic_count(), topics);
    for (std::size_t t = 0; t < topics; ++t) {
      for (const auto& link : relays.links(static_cast<ids::TopicIndex>(t))) {
        EXPECT_LT(link.peer, n);
        EXPECT_NE(link.peer, node);
      }
    }
  }

  const auto is_alive = [&](ids::NodeIndex node) {
    return system.is_alive(node);
  };
  const double consistency = health.ring_consistency(
      is_alive, [&](ids::NodeIndex node) -> const overlay::RoutingTable& {
        return system.routing_table(node);
      });
  EXPECT_GE(consistency, 0.9);

  const auto graph = system.overlay_snapshot();
  std::vector<std::vector<ids::NodeIndex>> adjacency(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto span = graph.neighbors(static_cast<ids::NodeIndex>(i));
    adjacency[i].assign(span.begin(), span.end());
  }
  const double clusters = health.mean_clusters_per_topic(
      adjacency, system.subscriptions(), is_alive);
  EXPECT_LE(clusters, 2.5);
}

TEST(FaultFuzz, FiftyScenariosHoldInvariants) {
  const std::uint64_t offset = seed_offset();
  for (std::size_t i = 0; i < kScenarios; ++i) {
    FuzzCase fz = draw_case(kBaseSeed + offset + i);
    SCOPED_TRACE(fz.repro);

    core::VitisConfig config;
    config.relay_retransmit = 2;
    config.route_fallback_limit = 2;
    config.gateway_silence_limit = 3;
    auto system = workload::make_vitis(fz.scenario, config, fz.seed);

    std::vector<ids::RingId> ring_ids(system->node_count());
    for (std::size_t node = 0; node < ring_ids.size(); ++node) {
      ring_ids[node] = system->ring_id(static_cast<ids::NodeIndex>(node));
    }
    analysis::HealthAnalyzer health;
    health.attach(ring_ids);

    // Fault-free warmup, then the lossy phase with recovery knobs armed.
    system->run_cycles(kWarmupCycles);
    system->set_fault_plan(fz.fault);
    system->run_cycles(kFaultCycles);

    // Publishing under fire must never produce phantom deliveries.
    publish_alive(*system, fz.scenario.schedule);
    EXPECT_LE(system->metrics().delivered_total(),
              system->metrics().expected_total());

    // Heal: lift the plan, bring the crashed nodes back, let repair run.
    system->set_fault_plan(sim::FaultConfig{});
    EXPECT_FALSE(system->fault_plan().active());
    for (const sim::CrashEvent& crash : fz.fault.crashes) {
      if (!system->is_alive(crash.node)) system->node_join(crash.node);
    }
    system->run_cycles(kRecoveryCycles);

    check_vitis_invariants(*system, health);

    // Delivery-ratio floor once faults heal.
    system->metrics().reset();
    publish_alive(*system, fz.scenario.schedule);
    const auto summary = pubsub::MetricsSummary::from(system->metrics());
    EXPECT_GT(summary.hit_ratio, 0.8);
    EXPECT_LE(system->metrics().delivered_total(),
              system->metrics().expected_total());
  }
}

TEST(FaultFuzz, BaselinesSurviveTheSamePlans) {
  // Lighter pass over the baseline fault paths (route admission, tree-graft
  // truncation, flood admission): no invariant machinery, but runs must not
  // trip VITIS_CHECK and accounting must never go phantom.
  const std::uint64_t offset = seed_offset();
  for (std::size_t i = 0; i < kScenarios; i += 10) {
    FuzzCase fz = draw_case(kBaseSeed + offset + i);
    SCOPED_TRACE(fz.repro);

    auto rvr = workload::make_rvr(fz.scenario, baselines::rvr::RvrConfig{},
                                  fz.seed);
    auto opt = workload::make_opt(fz.scenario, baselines::opt::OptConfig{},
                                  fz.seed);
    const auto exercise = [&](auto& system) {
      system.run_cycles(kWarmupCycles);
      system.set_fault_plan(fz.fault);
      system.run_cycles(kFaultCycles);
      publish_alive(system, fz.scenario.schedule);
      EXPECT_LE(system.metrics().delivered_total(),
                system.metrics().expected_total());
      system.set_fault_plan(sim::FaultConfig{});
      for (const sim::CrashEvent& crash : fz.fault.crashes) {
        if (!system.is_alive(crash.node)) system.node_join(crash.node);
      }
      system.run_cycles(kRecoveryCycles);
      publish_alive(system, fz.scenario.schedule);
      EXPECT_LE(system.metrics().delivered_total(),
                system.metrics().expected_total());
    };
    exercise(*rvr);
    exercise(*opt);
  }
}

}  // namespace
}  // namespace vitis
