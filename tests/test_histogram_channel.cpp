// The distribution-telemetry channel (support/histogram.hpp): the fixed
// log-linear bucket layout, exact-count/quantile accounting, and the lane
// model that makes the schema-v7 `distributions` block worker-count
// invariant — merging per-worker lanes bucket-wise must equal recording
// the same values through a single lane, in any order.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "support/histogram.hpp"

namespace vitis::support {
namespace {

TEST(Histogram, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    const auto bounds = Histogram::bucket_bounds(v);
    EXPECT_EQ(bounds.lo, v);
    EXPECT_EQ(bounds.hi, v);
  }
  // The first octave past the exact range still has width-1 buckets (the
  // sub-bucket shift only bites once the octave outgrows kSub values), so
  // counts are exact below 2 * kSub.
  for (std::uint64_t v = Histogram::kSub; v < 2 * Histogram::kSub; ++v) {
    const auto bounds = Histogram::bucket_bounds(Histogram::bucket_index(v));
    EXPECT_EQ(bounds.lo, v);
    EXPECT_EQ(bounds.hi, v);
  }
}

TEST(Histogram, BucketBoundsContainTheirValues) {
  // Sweep the neighborhood of every power of two (where the layout switches
  // octave) plus the extremes: each value must land in a bucket whose
  // inclusive range contains it, and the range must map back to the same
  // bucket at both ends.
  std::vector<std::uint64_t> probes = {0, 1, 7, 8, 9,
                                       std::numeric_limits<std::uint64_t>::max()};
  for (int shift = 4; shift < 64; ++shift) {
    const std::uint64_t base = std::uint64_t{1} << shift;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + 1);
  }
  for (const std::uint64_t v : probes) {
    const std::size_t index = Histogram::bucket_index(v);
    ASSERT_LT(index, Histogram::kBucketCount) << "value " << v;
    const auto bounds = Histogram::bucket_bounds(index);
    EXPECT_LE(bounds.lo, v) << "value " << v;
    EXPECT_GE(bounds.hi, v) << "value " << v;
    EXPECT_EQ(Histogram::bucket_index(bounds.lo), index) << "value " << v;
    EXPECT_EQ(Histogram::bucket_index(bounds.hi), index) << "value " << v;
  }
}

TEST(Histogram, BucketsTileTheValueRangeInOrder) {
  // Consecutive buckets abut exactly: hi + 1 == next lo, starting at 0.
  // Together with the containment test this proves the layout partitions
  // [0, 2^64) with no gaps or overlaps.
  std::uint64_t expected_lo = 0;
  for (std::size_t index = 0; index < Histogram::kBucketCount; ++index) {
    const auto bounds = Histogram::bucket_bounds(index);
    EXPECT_EQ(bounds.lo, expected_lo) << "bucket " << index;
    ASSERT_GE(bounds.hi, bounds.lo) << "bucket " << index;
    if (index + 1 < Histogram::kBucketCount) {
      expected_lo = bounds.hi + 1;
    } else {
      EXPECT_EQ(bounds.hi, std::numeric_limits<std::uint64_t>::max());
    }
  }
}

TEST(Histogram, RelativeResolutionIsBounded) {
  // Past the exact range, bucket width is at most lo / kSub (~12.5% at
  // kSubBits = 3) — the resolution claim the quantile consumers rely on.
  for (std::size_t index = Histogram::kSub; index < Histogram::kBucketCount;
       ++index) {
    const auto bounds = Histogram::bucket_bounds(index);
    const std::uint64_t width = bounds.hi - bounds.lo + 1;
    EXPECT_LE(width, bounds.lo / Histogram::kSub + 1) << "bucket " << index;
  }
}

TEST(Histogram, RecordAccumulatesCountSumMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.record(3);
  h.record(3);
  h.record(40);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 46u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(40)), 1u);
}

TEST(Histogram, QuantilesAreExactInTheExactRange) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);  // all width-1 buckets
  EXPECT_EQ(h.quantile(0.0), 1u);   // rank clamps to the 1st smallest
  EXPECT_EQ(h.quantile(0.5), 5u);
  EXPECT_EQ(h.quantile(0.9), 9u);
  EXPECT_EQ(h.quantile(1.0), 10u);
  EXPECT_EQ(h.quantile(2.0), 10u);  // q clamps to [0, 1]
  EXPECT_EQ(Histogram{}.quantile(0.5), 0u);  // empty histogram
}

TEST(Histogram, QuantileClampsToTheExactMaximum) {
  Histogram h;
  h.record(1000);  // bucket upper bound overshoots the observed max
  const auto bounds = Histogram::bucket_bounds(Histogram::bucket_index(1000));
  ASSERT_GT(bounds.hi, 1000u);
  EXPECT_EQ(h.quantile(0.5), 1000u);
  EXPECT_EQ(h.quantile(1.0), 1000u);
}

TEST(Histogram, QuantilesAreMonotone) {
  Histogram h;
  std::uint64_t v = 1;
  for (int i = 0; i < 40; ++i) {
    h.record(v);
    v = v * 3 + 1;  // spread across many octaves
  }
  std::uint64_t last = 0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const std::uint64_t value = h.quantile(q);
    EXPECT_GE(value, last) << "q=" << q;
    last = value;
  }
  EXPECT_EQ(last, h.max());
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  Histogram left, right, combined;
  for (std::uint64_t v = 0; v < 100; v += 3) {
    left.record(v);
    combined.record(v);
  }
  for (std::uint64_t v = 1; v < 100000; v *= 2) {
    right.record(v);
    combined.record(v);
  }
  left.merge(right);
  EXPECT_EQ(left, combined);  // defaulted operator==: bucket-exact
  EXPECT_NE(left, right);

  left.reset();
  EXPECT_EQ(left, Histogram{});
}

TEST(HistogramSet, LanesMergeToWorkerCountInvariantTotals) {
  // The determinism contract behind `--run-jobs`: the same values recorded
  // through any lane assignment (here round-robin over 3 workers, in a
  // different order than the serial reference) merge to the identical
  // histogram, per channel.
  HistogramSet sharded;
  sharded.configure_workers(3);
  EXPECT_EQ(sharded.workers(), 3u);
  HistogramSet serial;

  const std::uint64_t values[] = {0, 5, 8, 8, 17, 300, 4096, 70000};
  for (std::size_t i = 0; i < std::size(values); ++i) {
    sharded.record(Channel::kDeliveryHops, values[i], i % 3);
    sharded.record(Channel::kRoutingTableSize, values[i] + 1, (i + 1) % 3);
  }
  for (std::size_t i = std::size(values); i-- > 0;) {  // reverse order
    serial.record(Channel::kDeliveryHops, values[i]);
    serial.record(Channel::kRoutingTableSize, values[i] + 1);
  }

  EXPECT_EQ(sharded.merged(Channel::kDeliveryHops),
            serial.merged(Channel::kDeliveryHops));
  EXPECT_EQ(sharded.merged_all(), serial.merged_all());
  // Channels that never recorded stay empty in the merged view.
  EXPECT_EQ(sharded.merged(Channel::kNodeMessages).count(), 0u);
}

TEST(HistogramSet, ResetChannelClearsEveryLane) {
  HistogramSet set;
  set.configure_workers(2);
  set.record(Channel::kNodeMessages, 7, 0);
  set.record(Channel::kNodeMessages, 9, 1);
  set.record(Channel::kDeliveryHops, 3, 1);
  set.reset_channel(Channel::kNodeMessages);
  EXPECT_EQ(set.merged(Channel::kNodeMessages).count(), 0u);
  // Other channels are untouched — reset_channel backs the lazy re-derived
  // channels without disturbing the live ones.
  EXPECT_EQ(set.merged(Channel::kDeliveryHops).count(), 1u);

  set.reset();
  EXPECT_EQ(set.merged_all(), HistogramSet{}.merged_all());
}

TEST(HistogramSet, ConfigureWorkersPreservesRemainingLanes) {
  HistogramSet set;
  set.record(Channel::kDeliveryHops, 2);  // lane 0, before sizing
  set.configure_workers(4);
  set.record(Channel::kDeliveryHops, 3, 3);
  EXPECT_EQ(set.merged(Channel::kDeliveryHops).count(), 2u);
  set.configure_workers(0);  // clamps to one lane; lane 0 survives
  EXPECT_EQ(set.workers(), 1u);
  EXPECT_EQ(set.merged(Channel::kDeliveryHops).count(), 1u);
}

TEST(HistogramChannel, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (std::size_t c = 0; c < kChannelCount; ++c) {
    names.insert(to_string(static_cast<Channel>(c)));
  }
  EXPECT_EQ(names.size(), kChannelCount);  // no duplicates, none "?"
  EXPECT_EQ(names.count("delivery_hops"), 1u);
  EXPECT_EQ(names.count("routing_table_size"), 1u);
  EXPECT_EQ(names.count("stage_activations"), 1u);
}

}  // namespace
}  // namespace vitis::support
