#include <gtest/gtest.h>

#include <vector>

#include "workload/skype_churn.hpp"

namespace vitis::workload {
namespace {

SkypeChurnParams small_params() {
  SkypeChurnParams p;
  p.nodes = 500;
  p.duration_hours = 300.0;
  p.flash_crowd_time_hours = 150.0;
  p.flash_crowd_size = 100;
  p.flash_crowd_stay_hours = 20.0;
  return p;
}

TEST(SkypeChurn, TraceCoversConfiguredUniverseAndDuration) {
  sim::Rng rng(1);
  const auto trace = make_skype_churn(small_params(), rng);
  EXPECT_FALSE(trace.empty());
  EXPECT_LE(trace.universe_size(), 500u);
  EXPECT_LE(trace.duration_s(), 300.0 * 3600.0);
}

TEST(SkypeChurn, EventsAlternatePerNode) {
  sim::Rng rng(2);
  const auto trace = make_skype_churn(small_params(), rng);
  std::vector<int> state(500, 0);  // 0 = offline, 1 = online
  for (const auto& e : trace.events()) {
    if (e.join) {
      EXPECT_EQ(state[e.node], 0) << "double join for node " << e.node;
      state[e.node] = 1;
    } else {
      EXPECT_EQ(state[e.node], 1) << "leave while offline for " << e.node;
      state[e.node] = 0;
    }
  }
}

TEST(SkypeChurn, SteadyStatePopulationNearTheory) {
  sim::Rng rng(3);
  auto params = small_params();
  params.flash_crowd_size = 0;  // isolate the steady state
  const auto trace = make_skype_churn(params, rng);
  // Expected online fraction = s/(s+o).
  const double expected =
      params.mean_session_hours /
      (params.mean_session_hours + params.mean_offline_hours);
  double sum = 0.0;
  int samples = 0;
  for (double t = 50.0; t <= 250.0; t += 25.0) {
    sum += static_cast<double>(trace.population_at(t * 3600.0));
    ++samples;
  }
  const double mean_population = sum / samples;
  EXPECT_NEAR(mean_population / 500.0, expected, 0.12);
}

TEST(SkypeChurn, FlashCrowdSpikesThePopulation) {
  sim::Rng rng(4);
  const auto params = small_params();
  const auto trace = make_skype_churn(params, rng);
  const double before =
      static_cast<double>(trace.population_at(140.0 * 3600.0));
  const double during =
      static_cast<double>(trace.population_at(160.0 * 3600.0));
  // 100 extra joiners on a ~110-node baseline: a visible spike.
  EXPECT_GT(during, before + params.flash_crowd_size / 3.0);
}

TEST(SkypeChurn, InitialFractionRespected) {
  sim::Rng rng(5);
  auto params = small_params();
  params.initial_online_fraction = 0.5;
  const auto trace = make_skype_churn(params, rng);
  std::size_t initial_joins = 0;
  for (const auto& e : trace.events()) {
    if (e.time_s == 0.0 && e.join) ++initial_joins;
  }
  EXPECT_NEAR(static_cast<double>(initial_joins), 250.0, 40.0);
}

TEST(SkypeChurn, DeterministicForSeed) {
  sim::Rng a(6);
  sim::Rng b(6);
  const auto ta = make_skype_churn(small_params(), a);
  const auto tb = make_skype_churn(small_params(), b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta.events()[i], tb.events()[i]);
  }
}

TEST(SkypeChurn, DisabledFlashCrowd) {
  sim::Rng rng(7);
  auto params = small_params();
  params.flash_crowd_size = 0;
  const auto trace = make_skype_churn(params, rng);
  const double before =
      static_cast<double>(trace.population_at(140.0 * 3600.0));
  const double during =
      static_cast<double>(trace.population_at(160.0 * 3600.0));
  EXPECT_LT(std::abs(during - before), 60.0);  // no spike
}

TEST(SkypeChurn, SessionsAreHeavyTailed) {
  // Some sessions should be far longer than the mean (lognormal tail).
  sim::Rng rng(8);
  auto params = small_params();
  params.flash_crowd_size = 0;
  const auto trace = make_skype_churn(params, rng);
  std::vector<double> join_time(500, -1.0);
  double longest_session = 0.0;
  for (const auto& e : trace.events()) {
    if (e.join) {
      join_time[e.node] = e.time_s;
    } else if (join_time[e.node] >= 0.0) {
      longest_session =
          std::max(longest_session, e.time_s - join_time[e.node]);
      join_time[e.node] = -1.0;
    }
  }
  EXPECT_GT(longest_session, 5.0 * params.mean_session_hours * 3600.0);
}

}  // namespace
}  // namespace vitis::workload
