#include <gtest/gtest.h>

#include "sim/churn.hpp"

namespace vitis::sim {
namespace {

ChurnTrace simple_trace() {
  return ChurnTrace({
      {0.0, 0, true},
      {1.0, 1, true},
      {2.0, 0, false},
      {3.0, 2, true},
      {4.0, 1, false},
  });
}

TEST(ChurnTrace, SortsEventsByTime) {
  ChurnTrace trace({{5.0, 0, false}, {1.0, 0, true}, {3.0, 1, true}});
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.events()[0].time_s, 1.0);
  EXPECT_DOUBLE_EQ(trace.events()[1].time_s, 3.0);
  EXPECT_DOUBLE_EQ(trace.events()[2].time_s, 5.0);
}

TEST(ChurnTrace, DurationAndUniverse) {
  const auto trace = simple_trace();
  EXPECT_DOUBLE_EQ(trace.duration_s(), 4.0);
  EXPECT_EQ(trace.universe_size(), 3u);
  EXPECT_EQ(ChurnTrace{}.universe_size(), 0u);
  EXPECT_DOUBLE_EQ(ChurnTrace{}.duration_s(), 0.0);
}

TEST(ChurnTrace, EventsBetweenHalfOpenInterval) {
  const auto trace = simple_trace();
  const auto window = trace.events_between(1.0, 3.0);
  ASSERT_EQ(window.size(), 2u);
  EXPECT_DOUBLE_EQ(window[0].time_s, 1.0);
  EXPECT_DOUBLE_EQ(window[1].time_s, 2.0);
  EXPECT_TRUE(trace.events_between(10.0, 20.0).empty());
}

TEST(ChurnTrace, PopulationAt) {
  const auto trace = simple_trace();
  EXPECT_EQ(trace.population_at(0.5), 1u);
  EXPECT_EQ(trace.population_at(1.5), 2u);
  EXPECT_EQ(trace.population_at(2.5), 1u);
  EXPECT_EQ(trace.population_at(3.5), 2u);
  EXPECT_EQ(trace.population_at(100.0), 1u);  // node 1 left, 2 stayed
}

TEST(ChurnPlayback, AppliesEventsInOrder) {
  const auto trace = simple_trace();
  CycleEngine engine(3, 1);
  ChurnPlayback playback(trace, engine);

  auto changes = playback.advance_to(1.5);
  EXPECT_EQ(changes.joined, (std::vector<ids::NodeIndex>{0, 1}));
  EXPECT_TRUE(changes.left.empty());
  EXPECT_EQ(engine.alive_count(), 2u);

  changes = playback.advance_to(4.5);
  EXPECT_EQ(changes.joined, (std::vector<ids::NodeIndex>{2}));
  EXPECT_EQ(changes.left, (std::vector<ids::NodeIndex>{0, 1}));
  EXPECT_EQ(engine.alive_count(), 1u);
  EXPECT_TRUE(playback.finished());
}

TEST(ChurnPlayback, SkipsRedundantEvents) {
  ChurnTrace trace({{1.0, 0, true}, {2.0, 0, true}, {3.0, 0, false}});
  CycleEngine engine(1, 1);
  ChurnPlayback playback(trace, engine);
  const auto changes = playback.advance_to(2.5);
  EXPECT_EQ(changes.joined.size(), 1u);  // the duplicate join is swallowed
  EXPECT_EQ(engine.alive_count(), 1u);
}

TEST(ChurnPlayback, HalfOpenBoundary) {
  ChurnTrace trace({{1.0, 0, true}});
  CycleEngine engine(1, 1);
  ChurnPlayback playback(trace, engine);
  // advance_to(t) applies events with time < t strictly.
  EXPECT_TRUE(playback.advance_to(1.0).joined.empty());
  EXPECT_EQ(playback.advance_to(1.01).joined.size(), 1u);
}

}  // namespace
}  // namespace vitis::sim
