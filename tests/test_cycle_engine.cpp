#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "sim/cycle_engine.hpp"
#include "sim/outbox.hpp"

namespace vitis::sim {
namespace {

// Shorthand: a stage body that ignores its RNG and worker index.
CycleEngine::NodeStageFn counting(std::vector<int>& calls) {
  return [&calls](ids::NodeIndex node, std::size_t, Rng&, std::size_t) {
    ++calls[node];
  };
}

TEST(CycleEngine, StartsWithEveryoneDead) {
  CycleEngine engine(10, 1);
  EXPECT_EQ(engine.alive_count(), 0u);
  EXPECT_EQ(engine.node_count(), 10u);
  EXPECT_TRUE(engine.alive_nodes().empty());
  EXPECT_EQ(engine.run_jobs(), 1u);
}

TEST(CycleEngine, AliveBookkeeping) {
  CycleEngine engine(5, 1);
  engine.set_alive(0, true);
  engine.set_alive(3, true);
  EXPECT_EQ(engine.alive_count(), 2u);
  EXPECT_TRUE(engine.is_alive(0));
  EXPECT_FALSE(engine.is_alive(1));
  engine.set_alive(0, true);  // idempotent
  EXPECT_EQ(engine.alive_count(), 2u);
  engine.set_alive(0, false);
  EXPECT_EQ(engine.alive_count(), 1u);
  EXPECT_EQ(engine.alive_nodes(), std::vector<ids::NodeIndex>{3});
}

TEST(CycleEngine, StageRunsOncePerAliveNodePerCycle) {
  CycleEngine engine(6, 2);
  for (ids::NodeIndex i = 0; i < 4; ++i) engine.set_alive(i, true);
  std::vector<int> calls(6, 0);
  engine.add_stage("count", 0x1, counting(calls));
  engine.run(3);
  for (ids::NodeIndex i = 0; i < 4; ++i) EXPECT_EQ(calls[i], 3);
  EXPECT_EQ(calls[4], 0);
  EXPECT_EQ(calls[5], 0);
  EXPECT_EQ(engine.cycle(), 3u);
}

TEST(CycleEngine, StagesRunInRegistrationOrder) {
  CycleEngine engine(2, 3);
  engine.set_alive(0, true);
  std::vector<int> trace;
  engine.add_stage("first", 0x1,
                   [&](ids::NodeIndex, std::size_t, Rng&, std::size_t) {
                     trace.push_back(1);
                   });
  engine.add_stage("second", 0x2,
                   [&](ids::NodeIndex, std::size_t, Rng&, std::size_t) {
                     trace.push_back(2);
                   });
  engine.run(2);
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 1, 2}));
}

TEST(CycleEngine, HookRunsAfterEarlierStages) {
  CycleEngine engine(3, 4);
  engine.set_alive(0, true);
  engine.set_alive(1, true);
  std::vector<int> trace;
  engine.add_stage("p", 0x1,
                   [&](ids::NodeIndex, std::size_t, Rng&, std::size_t) {
                     trace.push_back(0);
                   });
  engine.add_cycle_hook("h", [&](std::size_t cycle) {
    trace.push_back(100 + static_cast<int>(cycle));
  });
  engine.run(2);
  EXPECT_EQ(trace, (std::vector<int>{0, 0, 100, 0, 0, 101}));
}

TEST(CycleEngine, NodeKilledByHookIsSkippedByLaterStages) {
  // Liveness mutation belongs to hooks (stages run over a frozen snapshot);
  // a node crashed by a hook must not be stepped by stages later in the
  // same cycle.
  CycleEngine engine(2, 5);
  engine.set_alive(0, true);
  engine.set_alive(1, true);
  int observed_runs = 0;
  engine.add_cycle_hook("killer", [&](std::size_t cycle) {
    if (cycle == 0) engine.set_alive(1, false);
  });
  engine.add_stage("observer", 0x1,
                   [&](ids::NodeIndex node, std::size_t, Rng&, std::size_t) {
                     if (node == 1) ++observed_runs;
                   });
  engine.run(1);
  EXPECT_EQ(observed_runs, 0);
}

TEST(CycleEngine, StageOrderIsAscendingByNode) {
  // The per-stage traversal is the ascending activation snapshot — this
  // order (not a shuffle) is what makes contiguous worker slices
  // concatenate identically for any worker count.
  CycleEngine engine(50, 6);
  for (ids::NodeIndex i = 0; i < 50; ++i) engine.set_alive(i, true);
  std::vector<ids::NodeIndex> order;
  engine.add_stage("record", 0x1,
                   [&](ids::NodeIndex node, std::size_t, Rng&, std::size_t) {
                     order.push_back(node);
                   });
  engine.run(1);
  ASSERT_EQ(order.size(), 50u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(CycleEngine, StageRngIsACounterStream) {
  // A node's stage draw is a pure function of (seed, salt, node, cycle):
  // independent of other nodes, of the traversal schedule, and of the
  // worker count.
  constexpr std::uint64_t kSeed = 77;
  constexpr std::uint64_t kSalt = 0xabc;
  CycleEngine engine(8, kSeed);
  for (ids::NodeIndex i = 0; i < 8; ++i) engine.set_alive(i, true);
  std::vector<std::vector<std::uint64_t>> draws(8);
  engine.add_stage("draw", kSalt,
                   [&](ids::NodeIndex node, std::size_t, Rng& rng,
                       std::size_t) { draws[node].push_back(rng.next_u64()); });
  engine.run(2);
  for (ids::NodeIndex node = 0; node < 8; ++node) {
    ASSERT_EQ(draws[node].size(), 2u);
    for (std::size_t cycle = 0; cycle < 2; ++cycle) {
      Rng expected = Rng::at(kSeed, kSalt, node, cycle);
      EXPECT_EQ(draws[node][cycle], expected.next_u64())
          << "node " << node << " cycle " << cycle;
    }
    EXPECT_NE(draws[node][0], draws[node][1]);  // fresh stream per cycle
  }
}

TEST(CycleEngine, MergeDrainsLanesInAscendingInitiatorOrder) {
  // The outbox contract: records appended per worker lane, drained in
  // worker order after the barrier, reassemble the global ascending
  // initiator order — for any worker count.
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{3}}) {
    CycleEngine engine(31, 9, jobs);
    for (ids::NodeIndex i = 0; i < 31; ++i) engine.set_alive(i, true);
    Outbox<ids::NodeIndex> outbox;
    outbox.configure(engine.run_jobs());
    std::vector<ids::NodeIndex> merged;
    engine.add_stage(
        "enqueue", 0x1,
        [&](ids::NodeIndex node, std::size_t, Rng&, std::size_t worker) {
          outbox.lane(worker).push_back(node);
        },
        [&](std::size_t) {
          outbox.drain([&](const ids::NodeIndex& node) {
            merged.push_back(node);
          });
        });
    engine.run(2);
    ASSERT_EQ(merged.size(), 62u) << "jobs=" << jobs;
    EXPECT_TRUE(std::is_sorted(merged.begin(), merged.begin() + 31));
    EXPECT_TRUE(std::is_sorted(merged.begin() + 31, merged.end()));
  }
}

TEST(CycleEngine, RunIsBitIdenticalAcrossWorkerCounts) {
  // The tentpole invariant at engine level: identical per-node state
  // evolution whatever run_jobs is.
  const auto simulate = [](std::size_t jobs) {
    CycleEngine engine(40, 123, jobs);
    for (ids::NodeIndex i = 0; i < 40; ++i) engine.set_alive(i, true);
    std::vector<std::uint64_t> state(40, 0);
    Outbox<std::pair<ids::NodeIndex, std::uint64_t>> outbox;
    outbox.configure(engine.run_jobs());
    engine.add_stage(
        "mix", 0x51,
        [&](ids::NodeIndex node, std::size_t, Rng& rng, std::size_t worker) {
          state[node] ^= rng.next_u64();  // node-local write only
          outbox.lane(worker).push_back({node, rng.next_u64()});
        },
        [&](std::size_t) {
          // Serial merge: cross-node writes happen only here.
          outbox.drain([&](const auto& record) {
            state[(record.first + 1) % 40] += record.second;
          });
        });
    engine.add_cycle_hook("churn", [&](std::size_t cycle) {
      if (cycle == 3) engine.set_alive(7, false);
      if (cycle == 5) engine.set_alive(7, true);
    });
    engine.run(8);
    return state;
  };
  const auto serial = simulate(1);
  EXPECT_EQ(serial, simulate(2));
  EXPECT_EQ(serial, simulate(7));
}

TEST(CycleEngine, SetAliveIsIdempotentOnDeadNodes) {
  // Regression: a crash-without-leave (fault layer) followed by a
  // node_leave — or a crash event firing twice — must not corrupt the
  // alive count. set_alive on an already-dead (or already-alive) node is a
  // no-op.
  CycleEngine engine(4, 8);
  for (ids::NodeIndex i = 0; i < 4; ++i) engine.set_alive(i, true);
  EXPECT_EQ(engine.alive_count(), 4u);
  engine.set_alive(2, false);
  EXPECT_EQ(engine.alive_count(), 3u);
  engine.set_alive(2, false);  // crash a node that already crashed
  engine.set_alive(2, false);
  EXPECT_EQ(engine.alive_count(), 3u);
  engine.set_alive(1, true);  // revive a node that never died
  EXPECT_EQ(engine.alive_count(), 3u);
  engine.set_alive(2, true);
  EXPECT_EQ(engine.alive_count(), 4u);
}

TEST(CycleEngineDeathTest, SetAliveRejectsOutOfRangeNodes) {
  // Regression for the activation-list guards: an out-of-range index would
  // previously walk off the bitmap; now it must trip VITIS_CHECK rather
  // than silently corrupt (or silently miss) the activation list the
  // worker slices are built from.
  CycleEngine engine(4, 8);
  EXPECT_DEATH(engine.set_alive(4, true), "VITIS_CHECK");
  EXPECT_DEATH(engine.set_alive(1000, false), "VITIS_CHECK");
}

TEST(CycleEngine, CycleCounterAdvancesAcrossRuns) {
  CycleEngine engine(1, 7);
  engine.set_alive(0, true);
  engine.run(2);
  engine.run(3);
  EXPECT_EQ(engine.cycle(), 5u);
}

TEST(CycleEngine, QuiescentNodesCostZeroWork) {
  // Event-driven activation: a huge universe with a handful of alive nodes
  // charges stage work only to the alive ones — the activation list is
  // the schedule, there is no O(node_count) scan per cycle.
  constexpr std::size_t kUniverse = 100'000;
  CycleEngine engine(kUniverse, 11);
  const std::vector<ids::NodeIndex> joined{7, 421, 90'000};
  for (const ids::NodeIndex node : joined) engine.set_alive(node, true);
  std::size_t total_calls = 0;
  std::vector<ids::NodeIndex> touched;
  engine.add_stage("count", 0x1,
                   [&](ids::NodeIndex node, std::size_t, Rng&, std::size_t) {
                     ++total_calls;
                     touched.push_back(node);
                   });
  engine.run(50);
  EXPECT_EQ(total_calls, joined.size() * 50);
  EXPECT_EQ(engine.active_nodes().size(), joined.size());
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  EXPECT_EQ(touched, joined);
}

TEST(CycleEngine, ActivationListMatchesFullBitmapScan) {
  // Equivalence digest: after an arbitrary churn history the incremental
  // activation list must equal the ascending full scan of the alive bitmap
  // — same members, same order (the order feeds the contiguous worker
  // slices, so divergence here would silently change every recorded
  // output).
  constexpr std::size_t kNodes = 257;
  CycleEngine engine(kNodes, 12);
  Rng churn(34);
  for (int step = 0; step < 2'000; ++step) {
    const auto node =
        static_cast<ids::NodeIndex>(churn.index(kNodes));
    engine.set_alive(node, churn.index(3) != 0);  // bias toward alive
    if (step % 100 != 0) continue;
    std::vector<ids::NodeIndex> scan;
    for (ids::NodeIndex i = 0; i < kNodes; ++i) {
      if (engine.is_alive(i)) scan.push_back(i);
    }
    const auto active = engine.active_nodes();
    ASSERT_EQ(std::vector<ids::NodeIndex>(active.begin(), active.end()),
              scan)
        << "activation list diverged from the bitmap at step " << step;
  }
  EXPECT_EQ(engine.alive_nodes().size(), engine.alive_count());
}

TEST(CycleEngine, ThroughputGaugeCountsOnlyRunTime) {
  CycleEngine engine(8, 13);
  for (ids::NodeIndex i = 0; i < 8; ++i) engine.set_alive(i, true);
  engine.add_stage("noop", 0x1,
                   [](ids::NodeIndex, std::size_t, Rng&, std::size_t) {});
  // Telemetry gauges start at zero: no cycles, no rate.
  EXPECT_EQ(engine.run_wall_ms(), 0.0);
  EXPECT_EQ(engine.cycles_per_second(), 0.0);
  engine.run(25);
  EXPECT_GT(engine.run_wall_ms(), 0.0);
  EXPECT_GT(engine.cycles_per_second(), 0.0);
  // The gauge is cycles over accumulated run() wall time.
  EXPECT_DOUBLE_EQ(engine.cycles_per_second(),
                   static_cast<double>(engine.cycle()) /
                       (engine.run_wall_ms() / 1000.0));
}

TEST(CycleEngine, StageTimingsCoverStagesNotHooks) {
  CycleEngine engine(16, 14, 2);
  for (ids::NodeIndex i = 0; i < 16; ++i) engine.set_alive(i, true);
  engine.add_stage("a", 0x1,
                   [](ids::NodeIndex, std::size_t, Rng&, std::size_t) {});
  engine.add_cycle_hook("h", [](std::size_t) {});
  engine.add_stage("b", 0x2,
                   [](ids::NodeIndex, std::size_t, Rng&, std::size_t) {});
  engine.run(3);
  const auto timings = engine.stage_timings();
  ASSERT_EQ(timings.size(), 2u);
  EXPECT_EQ(timings[0].name, "a");
  EXPECT_EQ(timings[1].name, "b");
  for (const auto& t : timings) EXPECT_GT(t.span_ns, 0u);
}

}  // namespace
}  // namespace vitis::sim
