#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sim/cycle_engine.hpp"

namespace vitis::sim {
namespace {

TEST(CycleEngine, StartsWithEveryoneDead) {
  CycleEngine engine(10, Rng(1));
  EXPECT_EQ(engine.alive_count(), 0u);
  EXPECT_EQ(engine.node_count(), 10u);
  EXPECT_TRUE(engine.alive_nodes().empty());
}

TEST(CycleEngine, AliveBookkeeping) {
  CycleEngine engine(5, Rng(1));
  engine.set_alive(0, true);
  engine.set_alive(3, true);
  EXPECT_EQ(engine.alive_count(), 2u);
  EXPECT_TRUE(engine.is_alive(0));
  EXPECT_FALSE(engine.is_alive(1));
  engine.set_alive(0, true);  // idempotent
  EXPECT_EQ(engine.alive_count(), 2u);
  engine.set_alive(0, false);
  EXPECT_EQ(engine.alive_count(), 1u);
  EXPECT_EQ(engine.alive_nodes(), std::vector<ids::NodeIndex>{3});
}

TEST(CycleEngine, ProtocolRunsOncePerAliveNodePerCycle) {
  CycleEngine engine(6, Rng(2));
  for (ids::NodeIndex i = 0; i < 4; ++i) engine.set_alive(i, true);
  std::vector<int> calls(6, 0);
  engine.add_protocol("count", [&](ids::NodeIndex node, std::size_t) {
    ++calls[node];
  });
  engine.run(3);
  for (ids::NodeIndex i = 0; i < 4; ++i) EXPECT_EQ(calls[i], 3);
  EXPECT_EQ(calls[4], 0);
  EXPECT_EQ(calls[5], 0);
  EXPECT_EQ(engine.cycle(), 3u);
}

TEST(CycleEngine, ProtocolsRunInRegistrationOrder) {
  CycleEngine engine(2, Rng(3));
  engine.set_alive(0, true);
  std::vector<int> trace;
  engine.add_protocol("first", [&](ids::NodeIndex, std::size_t) {
    trace.push_back(1);
  });
  engine.add_protocol("second", [&](ids::NodeIndex, std::size_t) {
    trace.push_back(2);
  });
  engine.run(2);
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 1, 2}));
}

TEST(CycleEngine, HookRunsAfterProtocols) {
  CycleEngine engine(3, Rng(4));
  engine.set_alive(0, true);
  engine.set_alive(1, true);
  std::vector<int> trace;
  engine.add_protocol("p", [&](ids::NodeIndex, std::size_t) {
    trace.push_back(0);
  });
  engine.add_cycle_hook("h", [&](std::size_t cycle) {
    trace.push_back(100 + static_cast<int>(cycle));
  });
  engine.run(2);
  EXPECT_EQ(trace, (std::vector<int>{0, 0, 100, 0, 0, 101}));
}

TEST(CycleEngine, NodeKilledMidCycleIsSkippedByLaterProtocols) {
  CycleEngine engine(2, Rng(5));
  engine.set_alive(0, true);
  engine.set_alive(1, true);
  int second_protocol_runs = 0;
  engine.add_protocol("killer", [&](ids::NodeIndex node, std::size_t) {
    if (node == 1) engine.set_alive(1, false);
  });
  engine.add_protocol("observer", [&](ids::NodeIndex node, std::size_t) {
    if (node == 1) ++second_protocol_runs;
  });
  engine.run(1);
  EXPECT_EQ(second_protocol_runs, 0);
}

TEST(CycleEngine, ActivationOrderVariesAcrossCycles) {
  CycleEngine engine(50, Rng(6));
  for (ids::NodeIndex i = 0; i < 50; ++i) engine.set_alive(i, true);
  std::vector<std::vector<ids::NodeIndex>> orders;
  orders.emplace_back();
  engine.add_protocol("record", [&](ids::NodeIndex node, std::size_t) {
    orders.back().push_back(node);
  });
  engine.add_cycle_hook("next", [&](std::size_t) { orders.emplace_back(); });
  engine.run(3);
  ASSERT_GE(orders.size(), 3u);
  EXPECT_NE(orders[0], orders[1]);  // shuffled per cycle
}

TEST(CycleEngine, SetAliveIsIdempotentOnDeadNodes) {
  // Regression: a crash-without-leave (fault layer) followed by a
  // node_leave — or a crash event firing twice — must not corrupt the
  // alive count. set_alive on an already-dead (or already-alive) node is a
  // no-op.
  CycleEngine engine(4, Rng(8));
  for (ids::NodeIndex i = 0; i < 4; ++i) engine.set_alive(i, true);
  EXPECT_EQ(engine.alive_count(), 4u);
  engine.set_alive(2, false);
  EXPECT_EQ(engine.alive_count(), 3u);
  engine.set_alive(2, false);  // crash a node that already crashed
  engine.set_alive(2, false);
  EXPECT_EQ(engine.alive_count(), 3u);
  engine.set_alive(1, true);  // revive a node that never died
  EXPECT_EQ(engine.alive_count(), 3u);
  engine.set_alive(2, true);
  EXPECT_EQ(engine.alive_count(), 4u);
}

TEST(CycleEngine, CycleCounterAdvancesAcrossRuns) {
  CycleEngine engine(1, Rng(7));
  engine.set_alive(0, true);
  engine.run(2);
  engine.run(3);
  EXPECT_EQ(engine.cycle(), 5u);
}

TEST(CycleEngine, QuiescentNodesCostZeroWork) {
  // Event-driven activation: a huge universe with a handful of alive nodes
  // charges protocol work only to the alive ones — the activation list is
  // the schedule, there is no O(node_count) scan per cycle.
  constexpr std::size_t kUniverse = 100'000;
  CycleEngine engine(kUniverse, Rng(11));
  const std::vector<ids::NodeIndex> joined{7, 421, 90'000};
  for (const ids::NodeIndex node : joined) engine.set_alive(node, true);
  std::size_t total_calls = 0;
  std::vector<ids::NodeIndex> touched;
  engine.add_protocol("count", [&](ids::NodeIndex node, std::size_t) {
    ++total_calls;
    touched.push_back(node);
  });
  engine.run(50);
  EXPECT_EQ(total_calls, joined.size() * 50);
  EXPECT_EQ(engine.active_nodes().size(), joined.size());
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  EXPECT_EQ(touched, joined);
}

TEST(CycleEngine, ActivationListMatchesFullBitmapScan) {
  // Equivalence digest: after an arbitrary churn history the incremental
  // activation list must equal the ascending full scan of the alive bitmap
  // — same members, same order (the order feeds the per-cycle shuffle, so
  // divergence here would silently change every recorded output).
  constexpr std::size_t kNodes = 257;
  CycleEngine engine(kNodes, Rng(12));
  Rng churn(34);
  for (int step = 0; step < 2'000; ++step) {
    const auto node =
        static_cast<ids::NodeIndex>(churn.index(kNodes));
    engine.set_alive(node, churn.index(3) != 0);  // bias toward alive
    if (step % 100 != 0) continue;
    std::vector<ids::NodeIndex> scan;
    for (ids::NodeIndex i = 0; i < kNodes; ++i) {
      if (engine.is_alive(i)) scan.push_back(i);
    }
    const auto active = engine.active_nodes();
    ASSERT_EQ(std::vector<ids::NodeIndex>(active.begin(), active.end()),
              scan)
        << "activation list diverged from the bitmap at step " << step;
  }
  EXPECT_EQ(engine.alive_nodes().size(), engine.alive_count());
}

TEST(CycleEngine, ThroughputGaugeCountsOnlyRunTime) {
  CycleEngine engine(8, Rng(13));
  for (ids::NodeIndex i = 0; i < 8; ++i) engine.set_alive(i, true);
  engine.add_protocol("noop", [](ids::NodeIndex, std::size_t) {});
  // Telemetry gauges start at zero: no cycles, no rate.
  EXPECT_EQ(engine.run_wall_ms(), 0.0);
  EXPECT_EQ(engine.cycles_per_second(), 0.0);
  engine.run(25);
  EXPECT_GT(engine.run_wall_ms(), 0.0);
  EXPECT_GT(engine.cycles_per_second(), 0.0);
  // The gauge is cycles over accumulated run() wall time.
  EXPECT_DOUBLE_EQ(engine.cycles_per_second(),
                   static_cast<double>(engine.cycle()) /
                       (engine.run_wall_ms() / 1000.0));
}

}  // namespace
}  // namespace vitis::sim
