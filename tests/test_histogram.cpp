#include <gtest/gtest.h>

#include <cmath>

#include "analysis/histogram.hpp"

namespace vitis::analysis {
namespace {

TEST(Histogram, BinsLinearly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, FractionsAndCenters) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 8; ++i) h.add(5.0);
  for (int i = 0; i < 2; ++i) h.add(95.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.8);
  EXPECT_DOUBLE_EQ(h.fraction(9), 0.2);
  EXPECT_DOUBLE_EQ(h.fraction(5), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 95.0);
}

TEST(Histogram, TailFraction) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.5);
  h.add(0.9);
  EXPECT_DOUBLE_EQ(h.tail_fraction(0.5), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.tail_fraction(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.tail_fraction(2.0), 0.0);
}

TEST(Histogram, EmptyHistogram) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(h.tail_fraction(0.5), 0.0);
}

TEST(FrequencyTable, CountsAndRows) {
  FrequencyTable t;
  t.add(3);
  t.add(3);
  t.add(1);
  t.add(7);
  const auto rows = t.rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].value, 1u);
  EXPECT_EQ(rows[0].frequency, 1u);
  EXPECT_EQ(rows[1].value, 3u);
  EXPECT_EQ(rows[1].frequency, 2u);
  EXPECT_EQ(rows[2].value, 7u);
  EXPECT_EQ(t.total(), 4u);
}

TEST(FrequencyTable, MeanMaxAndTail) {
  FrequencyTable t;
  t.add(1);
  t.add(2);
  t.add(3);
  t.add(10);
  EXPECT_DOUBLE_EQ(t.mean(), 4.0);
  EXPECT_EQ(t.max_value(), 10u);
  EXPECT_DOUBLE_EQ(t.fraction_above(3), 0.25);
  EXPECT_DOUBLE_EQ(t.fraction_above(0), 1.0);
  EXPECT_DOUBLE_EQ(t.fraction_above(10), 0.0);
}

TEST(FrequencyTable, EmptyDefaults) {
  FrequencyTable t;
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
  EXPECT_EQ(t.max_value(), 0u);
  EXPECT_DOUBLE_EQ(t.fraction_above(1), 0.0);
  EXPECT_DOUBLE_EQ(t.power_law_alpha_mle(), 0.0);
  EXPECT_TRUE(t.rows().empty());
}

TEST(FrequencyTable, PowerLawMleRecoversExponent) {
  // Feed a synthetic power law with known exponent and check the fit.
  FrequencyTable t;
  const double alpha = 2.0;
  for (std::uint64_t x = 1; x <= 1000; ++x) {
    const auto freq = static_cast<std::uint64_t>(
        1e6 * std::pow(static_cast<double>(x), -alpha));
    for (std::uint64_t i = 0; i < freq / 1000 + (x <= 20 ? 1 : 0); ++i) {
      t.add(x);
    }
  }
  const double fitted = t.power_law_alpha_mle(1);
  EXPECT_NEAR(fitted, alpha, 0.35);
}

}  // namespace
}  // namespace vitis::analysis
