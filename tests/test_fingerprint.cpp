// Property coverage for the subscription fingerprint and its use as a
// ranking prefilter (DESIGN.md "Hot path & determinism"):
//
//   * conservativeness — fingerprints_disjoint(a, b) may only be true when
//     intersection_size(a, b) == 0 (one-sided error; false negatives are
//     merely missed savings, false positives would corrupt ranking);
//   * bit-exactness — prepare()/score() with the prefilter on, with it off,
//     and the plain operator() all agree bit for bit, for uniform and for
//     skewed rates;
//   * ranking invariance — the full top-k friend ranking (score + tie-break,
//     exactly Algorithm 4's comparator) is identical with the prefilter on
//     and off, across many random pools and seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/utility.hpp"
#include "ids/hash.hpp"
#include "pubsub/subscription.hpp"
#include "sim/rng.hpp"

namespace vitis::core {
namespace {

constexpr std::size_t kTopics = 400;

pubsub::SubscriptionSet random_subs(sim::Rng& rng, std::size_t count) {
  std::vector<ids::TopicIndex> picks;
  for (std::size_t i = 0; i < count; ++i) {
    picks.push_back(static_cast<ids::TopicIndex>(rng.index(kTopics)));
  }
  return pubsub::SubscriptionSet(std::move(picks));
}

TEST(Fingerprint, BitIsDeterministicPerTopic) {
  for (ids::TopicIndex t = 0; t < kTopics; ++t) {
    const std::uint64_t bit = pubsub::topic_fingerprint_bit(t);
    EXPECT_NE(bit, 0u);
    EXPECT_EQ(bit & (bit - 1), 0u) << "exactly one bit per topic";
    EXPECT_EQ(bit, pubsub::topic_fingerprint_bit(t));
  }
}

TEST(Fingerprint, SetFingerprintIsUnionOfTopicBits) {
  sim::Rng rng(0x5e7);
  for (int trial = 0; trial < 200; ++trial) {
    const auto subs = random_subs(rng, 1 + rng.index(30));
    std::uint64_t expected = 0;
    for (const ids::TopicIndex t : subs.topics()) {
      expected |= pubsub::topic_fingerprint_bit(t);
    }
    EXPECT_EQ(subs.fingerprint(), expected);
  }
}

TEST(Fingerprint, AddRemoveKeepFingerprintConsistent) {
  sim::Rng rng(0xadd);
  pubsub::SubscriptionSet subs;
  std::vector<ids::TopicIndex> present;
  for (int step = 0; step < 500; ++step) {
    const auto t = static_cast<ids::TopicIndex>(rng.index(kTopics));
    if (rng.index(3) == 0 && !present.empty()) {
      const auto victim = present[rng.index(present.size())];
      subs.remove(victim);
      present.erase(std::remove(present.begin(), present.end(), victim),
                    present.end());
    } else if (!subs.contains(t)) {
      subs.add(t);
      present.push_back(t);
    }
    std::uint64_t expected = 0;
    for (const ids::TopicIndex p : subs.topics()) {
      expected |= pubsub::topic_fingerprint_bit(p);
    }
    ASSERT_EQ(subs.fingerprint(), expected) << "after step " << step;
  }
}

TEST(FingerprintPrefilter, DisjointVerdictImpliesEmptyIntersection) {
  sim::Rng rng(0xd15);
  std::size_t rejected = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const auto a = random_subs(rng, 1 + rng.index(12));
    const auto b = random_subs(rng, 1 + rng.index(12));
    if (pubsub::fingerprints_disjoint(a.fingerprint(), b.fingerprint())) {
      ++rejected;
      EXPECT_EQ(pubsub::intersection_size(a, b), 0u)
          << "prefilter rejected an overlapping pair";
    }
    // The converse need not hold (hash collisions), but a shared topic must
    // always surface in the fingerprint overlap:
    if (pubsub::intersection_size(a, b) > 0) {
      EXPECT_FALSE(
          pubsub::fingerprints_disjoint(a.fingerprint(), b.fingerprint()));
    }
  }
  EXPECT_GT(rejected, 0u) << "trial mix never exercised the reject path";
}

// Scores must be bit-identical across: operator(), batch with prefilter on,
// batch with prefilter off — for uniform (exact-count Jaccard) and skewed
// (floating-point merge) rates.
TEST(FingerprintPrefilter, BatchScoringIsBitIdenticalToExact) {
  std::vector<double> skewed(kTopics);
  for (std::size_t t = 0; t < kTopics; ++t) {
    skewed[t] = 1.0 / static_cast<double>(t + 1);
  }
  UtilityFunction uniform = UtilityFunction::uniform(kTopics);
  UtilityFunction weighted{std::span<const double>(skewed)};

  sim::Rng rng(0xb17);
  for (UtilityFunction* u : {&uniform, &weighted}) {
    for (int trial = 0; trial < 400; ++trial) {
      const auto a = random_subs(rng, 1 + rng.index(20));
      const auto b = random_subs(rng, 1 + rng.index(20));
      const double exact = (*u)(a, b);

      u->set_prefilter_enabled(true);
      u->prepare(a);
      const double with_prefilter = u->score(b);

      u->set_prefilter_enabled(false);
      u->prepare(a);
      const double without_prefilter = u->score(b);

      // Bitwise equality, not tolerance: the accelerations must not change
      // a single ulp, or rankings could diverge between runs.
      EXPECT_EQ(exact, with_prefilter);
      EXPECT_EQ(exact, without_prefilter);
    }
  }
}

// Algorithm 4's friend ranking (same comparator as
// VitisSystem::select_neighbors) over a candidate pool must come out
// identical with the prefilter on and off.
TEST(FingerprintPrefilter, FriendRankingInvariantUnderPrefilter) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1337ULL}) {
    sim::Rng rng(seed);
    const auto self_subs = random_subs(rng, 6);
    std::vector<pubsub::SubscriptionSet> pool;
    std::vector<ids::NodeIndex> pool_nodes;
    for (int i = 0; i < 60; ++i) {
      pool.push_back(random_subs(rng, 1 + rng.index(10)));
      pool_nodes.push_back(static_cast<ids::NodeIndex>(i + 1));
    }

    UtilityFunction u = UtilityFunction::uniform(kTopics);
    const std::uint64_t tie_salt = ids::mix64(0 ^ 0x7469656272656b00ULL);
    const auto rank = [&](bool prefilter) {
      u.set_prefilter_enabled(prefilter);
      u.prepare(self_subs);
      std::vector<std::pair<double, std::size_t>> ranked;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        ranked.emplace_back(u.score(pool[i]), i);
      }
      std::sort(ranked.begin(), ranked.end(),
                [&](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return ids::mix64(tie_salt ^ pool_nodes[a.second]) <
                         ids::mix64(tie_salt ^ pool_nodes[b.second]);
                });
      return ranked;
    };

    const auto with = rank(true);
    const auto without = rank(false);
    ASSERT_EQ(with.size(), without.size());
    for (std::size_t i = 0; i < with.size(); ++i) {
      EXPECT_EQ(with[i].second, without[i].second) << "rank " << i;
      EXPECT_EQ(with[i].first, without[i].first) << "rank " << i;
    }

    // Sanity: the prefilter actually fired on this pool.
    u.reset_prefilter_stats();
    u.set_prefilter_enabled(true);
    u.prepare(self_subs);
    for (const auto& candidate : pool) (void)u.score(candidate);
    EXPECT_GT(u.prefilter_stats().rejects, 0u);
  }
}

}  // namespace
}  // namespace vitis::core
