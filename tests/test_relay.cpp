#include <gtest/gtest.h>

#include <algorithm>

#include "core/relay.hpp"

namespace vitis::core {
namespace {

TEST(RelayTable, AddAndQueryLinks) {
  RelayTable relay;
  EXPECT_FALSE(relay.is_relay_for(5));
  relay.add_link(5, 10);
  relay.add_link(5, 11);
  relay.add_link(6, 10);
  EXPECT_TRUE(relay.is_relay_for(5));
  EXPECT_TRUE(relay.is_relay_for(6));
  EXPECT_EQ(relay.topic_count(), 2u);
  EXPECT_EQ(relay.link_count(), 3u);
  std::vector<ids::NodeIndex> peers;
  for (const RelayTable::Link& link : relay.links(5)) peers.push_back(link.peer);
  std::sort(peers.begin(), peers.end());
  EXPECT_EQ(peers, (std::vector<ids::NodeIndex>{10, 11}));
  EXPECT_TRUE(relay.links(99).empty());
}

TEST(RelayTable, AddIsIdempotentAndRefreshes) {
  RelayTable relay;
  relay.add_link(1, 2);
  relay.age_and_expire(10);  // age -> 1
  relay.add_link(1, 2);      // refresh -> age 0
  EXPECT_EQ(relay.link_count(), 1u);
  // Two more agings with ttl 1: survives because it was refreshed.
  relay.age_and_expire(1);
  EXPECT_TRUE(relay.is_relay_for(1));
}

TEST(RelayTable, ExpiryDropsStaleLinks) {
  RelayTable relay;
  relay.add_link(1, 2);
  relay.add_link(1, 3);
  relay.age_and_expire(2);
  relay.add_link(1, 3);  // keep one fresh
  relay.age_and_expire(2);
  relay.age_and_expire(2);  // link to 2 now age 3 > ttl 2
  const auto links = relay.links(1);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].peer, 3u);
}

TEST(RelayTable, ExpiryRemovesEmptyTopics) {
  RelayTable relay;
  relay.add_link(7, 1);
  relay.age_and_expire(0);  // ttl 0: everything aged once is dropped
  EXPECT_FALSE(relay.is_relay_for(7));
  EXPECT_EQ(relay.topic_count(), 0u);
}

TEST(RelayTable, RemovePeerAcrossTopics) {
  RelayTable relay;
  relay.add_link(1, 5);
  relay.add_link(2, 5);
  relay.add_link(2, 6);
  relay.remove_peer(5);
  EXPECT_FALSE(relay.is_relay_for(1));
  EXPECT_TRUE(relay.is_relay_for(2));
  ASSERT_EQ(relay.links(2).size(), 1u);
  EXPECT_EQ(relay.links(2)[0].peer, 6u);
}

TEST(RelayTable, ClearResets) {
  RelayTable relay;
  relay.add_link(1, 2);
  relay.clear();
  EXPECT_EQ(relay.topic_count(), 0u);
  EXPECT_EQ(relay.link_count(), 0u);
}

}  // namespace
}  // namespace vitis::core
