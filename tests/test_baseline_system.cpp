// Behaviors of the shared baseline scaffolding, exercised through the RVR
// subclass (the base class is abstract).
#include <gtest/gtest.h>

#include <set>

#include "baselines/rvr/rvr_system.hpp"
#include "ids/hash.hpp"
#include "workload/scenario.hpp"

namespace vitis::baselines {
namespace {

workload::SyntheticScenario scenario_for(std::uint64_t seed) {
  workload::SyntheticScenarioParams params;
  params.subscriptions.nodes = 200;
  params.subscriptions.topics = 80;
  params.subscriptions.subs_per_node = 10;
  params.subscriptions.pattern =
      workload::CorrelationPattern::kLowCorrelation;
  params.events = 40;
  params.seed = seed;
  return workload::make_synthetic_scenario(params);
}

TEST(BaselineConfig, Validation) {
  BaselineConfig config;
  EXPECT_NO_THROW(config.validate());
  config.routing_table_size = 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = BaselineConfig{};
  config.view_size = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = BaselineConfig{};
  config.bootstrap_contacts = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = BaselineConfig{};
  config.lookup_hop_budget = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(BaselineSystem, JoinGraceExcludesFreshNodes) {
  const auto scenario = scenario_for(3);
  rvr::RvrConfig config;
  config.base.join_grace_cycles = 5;
  auto system = workload::make_rvr(scenario, config, 3,
                                   /*start_online=*/false);
  for (ids::NodeIndex n = 0; n < 200; ++n) system->node_join(n);
  system->run_cycles(2);  // less than the grace period

  // Every subscriber is inside the grace window: zero expected deliveries.
  const ids::TopicIndex topic = 1;
  const auto subscribers = system->subscriptions().subscribers(topic);
  ASSERT_FALSE(subscribers.empty());
  const auto report = system->publish(topic, subscribers[0]);
  EXPECT_EQ(report.expected, 0u);
  EXPECT_DOUBLE_EQ(report.hit_ratio(), 1.0);

  // After the grace period they are accountable.
  system->run_cycles(6);
  const auto later = system->publish(topic, subscribers[0]);
  EXPECT_GT(later.expected, 0u);
}

TEST(BaselineSystem, OverlaySnapshotExcludesDeadNodes) {
  const auto scenario = scenario_for(5);
  auto system = workload::make_rvr(scenario, rvr::RvrConfig{}, 5);
  system->run_cycles(20);
  system->node_leave(7);
  const auto overlay = system->overlay_snapshot();
  EXPECT_EQ(overlay.degree(7), 0u);
}

TEST(BaselineSystem, LookupSkipsDeadNeighbors) {
  const auto scenario = scenario_for(7);
  auto system = workload::make_rvr(scenario, rvr::RvrConfig{}, 7);
  system->run_cycles(25);
  // Kill a band of nodes; lookups must still converge via alive routes.
  for (ids::NodeIndex n = 50; n < 80; ++n) system->node_leave(n);
  for (int probe = 0; probe < 20; ++probe) {
    const auto origin = static_cast<ids::NodeIndex>(probe);
    const auto result =
        system->lookup(origin, ids::topic_ring_id(
                                   static_cast<ids::TopicIndex>(probe)));
    EXPECT_TRUE(result.converged);
    for (const ids::NodeIndex hop : result.path) {
      EXPECT_TRUE(system->is_alive(hop)) << "routed through dead node";
    }
  }
}

TEST(BaselineSystem, RejoinResetsJoinCycleAccounting) {
  const auto scenario = scenario_for(9);
  rvr::RvrConfig config;
  config.base.join_grace_cycles = 3;
  auto system = workload::make_rvr(scenario, config, 9);
  system->run_cycles(15);

  const ids::TopicIndex topic = 2;
  const auto subscribers = system->subscriptions().subscribers(topic);
  ASSERT_GT(subscribers.size(), 2u);
  const ids::NodeIndex bouncer = subscribers[0];
  const std::size_t expected_before =
      system->publish(topic, subscribers[1]).expected;

  system->node_leave(bouncer);
  system->node_join(bouncer);  // freshly rejoined: inside grace again
  const std::size_t expected_after =
      system->publish(topic, subscribers[1]).expected;
  EXPECT_EQ(expected_after, expected_before - 1);
}

TEST(BaselineSystem, RingIdsMatchHashFunction) {
  const auto scenario = scenario_for(11);
  auto system = workload::make_rvr(scenario, rvr::RvrConfig{}, 11);
  for (ids::NodeIndex n = 0; n < 20; ++n) {
    EXPECT_EQ(system->ring_id(n), ids::node_ring_id(n));
  }
}

TEST(BaselineSystem, AliveCountTracksChurn) {
  const auto scenario = scenario_for(13);
  auto system = workload::make_rvr(scenario, rvr::RvrConfig{}, 13);
  EXPECT_EQ(system->alive_count(), 200u);
  system->node_leave(0);
  system->node_leave(1);
  system->node_leave(0);  // idempotent
  EXPECT_EQ(system->alive_count(), 198u);
  system->node_join(0);
  EXPECT_EQ(system->alive_count(), 199u);
}

}  // namespace
}  // namespace vitis::baselines
